package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// benchGet is the allocation-light request path the latency benchmarks
// measure: handler dispatch, cache, encoding — no sockets.
func benchGet(h http.Handler, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec
}

// reportLatencies reports p50/p99 request latency and throughput over the
// timed loop. BENCH_serve.json tracks the datapoints.
func reportLatencies(b *testing.B, lats []time.Duration) {
	b.Helper()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p := func(q float64) time.Duration {
		i := int(float64(len(lats)-1) * q)
		return lats[i]
	}
	b.ReportMetric(float64(p(0.50).Nanoseconds())/1e3, "p50-µs")
	b.ReportMetric(float64(p(0.99).Nanoseconds())/1e3, "p99-µs")
	b.ReportMetric(float64(len(lats))/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServe measures the daemon's request path (DESIGN.md §8):
//
//   - WarmHit: repeat fetch of an already-encoded panel — one cache
//     lookup, the steady state a dashboard sees.
//   - ColdCache: fetch against an empty cache with a warm snapshot — a
//     sealed-table read plus one TSV encoding, the first fetch after a
//     refresh publishes a new generation.
//   - ConcurrentReaderDuringRefresh: reader latency while ingest passes
//     rebuild and republish the state in the background — the isolation
//     claim under load.
//   - CLIEquivalentFig1a: what the same panel costs as a one-shot
//     `figures -only fig1a` style run (full plan execution per query) —
//     the baseline the warm path's ≥10x speedup criterion divides by.
//
// All arms run at the test-scale preset; -benchtime=1x in the CI smoke.
func BenchmarkServe(b *testing.B) {
	srv := newTestServer(b, fxBase, "")
	h := srv.Handler()
	ids := srv.Snapshot().Res.Figures()

	b.Run("WarmHit", func(b *testing.B) {
		for _, id := range ids { // prime every panel
			if rec := benchGet(h, "/figures/"+id); rec.Code != http.StatusOK {
				b.Fatalf("%s: %d", id, rec.Code)
			}
		}
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			rec := benchGet(h, "/figures/"+ids[i%len(ids)])
			lats = append(lats, time.Since(t0))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
		b.StopTimer()
		reportLatencies(b, lats)
	})

	b.Run("ColdCache", func(b *testing.B) {
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv.cache = NewCache(64 << 20) // every fetch is a first fetch
			b.StartTimer()
			t0 := time.Now()
			rec := benchGet(h, "/figures/"+ids[i%len(ids)])
			lats = append(lats, time.Since(t0))
			if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
				b.Fatalf("status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
			}
		}
		reportLatencies(b, lats)
	})

	b.Run("ConcurrentReaderDuringRefresh", func(b *testing.B) {
		dir := b.TempDir()
		tracePath := filepath.Join(dir, "live.trace")
		copyFile(b, fxBase, tracePath)
		rsrv := newTestServer(b, tracePath, filepath.Join(dir, "ckpt"))
		rh := rsrv.Handler()

		// A background writer keeps the state plane churning: alternate
		// the trace file between the two horizons and republish, so the
		// timed readers always race a real ingest pass.
		var stop atomic.Bool
		done := make(chan struct{})
		go func() {
			defer close(done)
			for flip := 0; !stop.Load(); flip++ {
				src := fxExt
				if flip%2 == 1 {
					src = fxBase
				}
				replaceFile(b, src, tracePath)
				if _, _, err := rsrv.Refresh(context.Background()); err != nil {
					b.Errorf("refresh: %v", err)
					return
				}
			}
		}()

		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			rec := benchGet(rh, "/figures/"+ids[i%len(ids)])
			lats = append(lats, time.Since(t0))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
		b.StopTimer()
		stop.Store(true)
		<-done
		reportLatencies(b, lats)
	})

	b.Run("CLIEquivalentFig1a", func(b *testing.B) {
		cfg := serveTestConfig()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := trace.OpenFileSource(fxBase)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.RunFigures(nil, src, cfg, "fig1a")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Figure("fig1a"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e3, "per-query-µs")
		if b.N > 0 {
			b.Logf("one-shot query: %s per fig1a (the warm path amortizes this across every fetch)", b.Elapsed()/time.Duration(b.N))
		}
	})
}
