package serve

import (
	"container/list"
	"sync"
)

// Cache is the daemon's plan-result cache: encoded figure panels keyed by
// (config fingerprint, trace day, figure id, δ-set, format) — the key is
// built by cacheKey — bounded by a byte cap with LRU eviction. Lookups
// are coalesced single-flight: when N requests miss on the same key
// concurrently, one computes and N-1 wait for its bytes, so a burst of
// identical uncached panel fetches costs exactly one plan execution.
//
// Values are immutable by contract: callers hand the cache the encoded
// bytes once and only ever read them afterwards, so hits can return the
// stored slice without copying.
type Cache struct {
	mu      sync.Mutex
	cap     int64
	bytes   int64
	ll      *list.List               // front = most recently used
	items   map[string]*list.Element // value type: *cacheEntry
	flights map[string]*flight

	hits, misses, coalesced, evictions, dropped, carried int64
}

// cacheEntry is one cached encoding with the trace day it was computed
// at, kept so DropOtherDays can invalidate a superseded generation.
type cacheEntry struct {
	key string
	val []byte
	day int32
}

// flight is one in-progress computation other requests for the same key
// wait on.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// NewCache returns a cache bounded to capBytes of stored values
// (capBytes <= 0 disables storage; single-flight coalescing still works).
func NewCache(capBytes int64) *Cache {
	return &Cache{
		cap:     capBytes,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// CacheStats is a point-in-time snapshot of the cache counters, served by
// /statz.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	CapBytes  int64 `json:"cap_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Dropped   int64 `json:"dropped"`
	Carried   int64 `json:"carried"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.items),
		Bytes:     c.bytes,
		CapBytes:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Dropped:   c.dropped,
		Carried:   c.carried,
	}
}

// Rekey moves the entry at oldKey to newKey, restamping its generation
// day — the publish-time carry-forward for panels whose encodings are
// unchanged across a day advance, sparing their next request a
// re-encode. It reports whether an entry moved; absent oldKey or an
// already-occupied newKey are no-ops.
func (c *Cache) Rekey(oldKey, newKey string, day int32) bool {
	if oldKey == newKey {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[oldKey]
	if ok {
		if _, taken := c.items[newKey]; taken {
			ok = false
		}
	}
	if !ok {
		return false
	}
	ent := el.Value.(*cacheEntry)
	delete(c.items, oldKey)
	ent.key, ent.day = newKey, day
	c.items[newKey] = el
	c.ll.MoveToFront(el)
	c.carried++
	return true
}

// GetOrCompute returns the cached bytes for key, or runs compute exactly
// once per concurrent burst of callers and caches its result. hit
// reports whether the bytes came from the store (true) rather than a
// computation this call ran or waited on (false). compute errors are
// returned to every waiter of the flight and never cached, so a
// transient failure doesn't poison the key.
func (c *Cache) GetOrCompute(key string, day int32, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val = el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.val, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	f.val, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insert(key, day, f.val)
	}
	c.mu.Unlock()
	return f.val, false, f.err
}

// insert stores one value and evicts least-recently-used entries past the
// byte cap. Values larger than the whole cap are not stored at all —
// admitting one would evict everything for a value that can never be
// kept. Callers hold c.mu.
func (c *Cache) insert(key string, day int32, val []byte) {
	size := int64(len(val))
	if size > c.cap {
		return
	}
	if el, ok := c.items[key]; ok {
		// A racing flight already stored this key; keep the fresher value.
		ent := el.Value.(*cacheEntry)
		c.bytes += size - int64(len(ent.val))
		ent.val, ent.day = val, day
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, day: day})
		c.bytes += size
	}
	for c.bytes > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
		c.evictions++
	}
}

// remove unlinks one entry. Callers hold c.mu.
func (c *Cache) remove(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= int64(len(ent.val))
}

// DropOtherDays invalidates every entry computed at a trace day other
// than day. Keys already embed the day, so entries of a superseded
// generation can never be served again — this reclaims their bytes
// eagerly at publish time instead of waiting for LRU pressure.
func (c *Cache) DropOtherDays(day int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheEntry).day != day {
			c.remove(el)
			c.dropped++
		}
	}
}
