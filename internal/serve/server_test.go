package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// quietLog drops records below warn so test output stays readable.
func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer boots a server over tracePath with the test-scale config.
func newTestServer(t testing.TB, tracePath, checkpointDir string) *Server {
	t.Helper()
	srv, err := NewServer(context.Background(), Options{
		TracePath:     tracePath,
		CheckpointDir: checkpointDir,
		Config:        serveTestConfig(),
		Log:           quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// get performs one request against the handler in-process.
func get(t testing.TB, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec
}

func TestServeWarmFigures(t *testing.T) {
	baseRes, _ := referenceResults(t)
	srv := newTestServer(t, fxBase, "")
	h := srv.Handler()

	if d := srv.Snapshot().Day; d != fxBaseDays-1 {
		t.Fatalf("published day = %d, want %d", d, fxBaseDays-1)
	}

	t.Run("tsv matches a quiesced from-zero run", func(t *testing.T) {
		for _, id := range baseRes.Figures() {
			rec := get(t, h, "/figures/"+id)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", id, rec.Code, rec.Body.String())
			}
			if want := encodeFigure(t, baseRes, id, core.FormatTSV); !bytes.Equal(rec.Body.Bytes(), want) {
				t.Errorf("%s: served TSV differs from the from-zero run", id)
			}
			if got := rec.Header().Get("Content-Type"); got != core.FormatTSV.ContentType() {
				t.Errorf("%s: Content-Type = %q", id, got)
			}
			if got := rec.Header().Get("X-Trace-Day"); got != strconv.Itoa(fxBaseDays-1) {
				t.Errorf("%s: X-Trace-Day = %q", id, got)
			}
		}
	})

	t.Run("repeat fetch is a cache hit", func(t *testing.T) {
		first := get(t, h, "/figures/fig1a?format=json")
		if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
			t.Fatalf("first fetch: status %d, X-Cache %q", first.Code, first.Header().Get("X-Cache"))
		}
		second := get(t, h, "/figures/fig1a?format=json")
		if second.Header().Get("X-Cache") != "hit" {
			t.Fatalf("second fetch: X-Cache = %q, want hit", second.Header().Get("X-Cache"))
		}
		if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
			t.Fatal("hit served different bytes than the miss")
		}
		if want := encodeFigure(t, baseRes, "fig1a", core.FormatJSON); !bytes.Equal(first.Body.Bytes(), want) {
			t.Fatal("served JSON differs from the from-zero run")
		}
	})

	t.Run("warm delta equal to the grid serves from the snapshot", func(t *testing.T) {
		rec := get(t, h, "/figures/fig4a?delta=0.01,0.1")
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if want := encodeFigure(t, baseRes, "fig4a", core.FormatTSV); !bytes.Equal(rec.Body.Bytes(), want) {
			t.Error("grid-δ request did not serve the warm panel")
		}
	})

	t.Run("error statuses", func(t *testing.T) {
		for _, tc := range []struct {
			target string
			want   int
		}{
			{"/figures/fig9z", http.StatusNotFound},
			{"/figures/fig1a?format=xml", http.StatusBadRequest},
			{"/figures/fig4a?delta=bogus", http.StatusBadRequest},
			{"/figures/fig4a?delta=-0.5", http.StatusBadRequest},
		} {
			if rec := get(t, h, tc.target); rec.Code != tc.want {
				t.Errorf("%s: status %d, want %d", tc.target, rec.Code, tc.want)
			}
		}
	})

	t.Run("healthz and statz", func(t *testing.T) {
		rec := get(t, h, "/healthz")
		var hz struct {
			Status  string `json:"status"`
			LastDay int32  `json:"last_day"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
			t.Fatal(err)
		}
		if hz.Status != "ok" || hz.LastDay != fxBaseDays-1 {
			t.Fatalf("healthz = %+v", hz)
		}

		rec = get(t, h, "/statz")
		var st map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st["requests"].(float64) <= 0 {
			t.Error("statz reports zero requests after several")
		}
		cache := st["cache"].(map[string]any)
		if cache["hits"].(float64) < 1 {
			t.Errorf("statz cache hits = %v, want >= 1", cache["hits"])
		}
	})

	t.Run("figure list", func(t *testing.T) {
		rec := get(t, h, "/figures")
		var list struct {
			Figures []string `json:"figures"`
			LastDay int32    `json:"last_day"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Figures) != len(baseRes.Figures()) || list.LastDay != fxBaseDays-1 {
			t.Fatalf("list = %+v, want %d figures at day %d", list, len(baseRes.Figures()), fxBaseDays-1)
		}
	})
}

// TestServeColdDeltaSingleFlight pins the cache's headline guarantee at
// the HTTP layer: a burst of concurrent requests for the same uncached
// custom-δ panel — the expensive kind, each a real plan execution — runs
// exactly one plan.
func TestServeColdDeltaSingleFlight(t *testing.T) {
	srv := newTestServer(t, fxBase, "")
	h := srv.Handler()

	// Count plan executions from here on; the warm load already happened.
	var coldRuns atomic.Int64
	inner := srv.runFigures
	srv.runFigures = func(ctx context.Context, src trace.MetaSource, cfg core.Config, figures ...string) (*core.Result, error) {
		coldRuns.Add(1)
		if cfg.CheckpointDir != "" || cfg.Resume {
			t.Error("cold plan reached the warm checkpoint plane")
		}
		return inner(ctx, src, cfg, figures...)
	}

	const callers = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, callers)
	codes := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := get(t, h, "/figures/fig4a?delta=0.02,0.08")
			bodies[i], codes[i] = rec.Body.Bytes(), rec.Code
		}(i)
	}
	wg.Wait()

	if n := coldRuns.Load(); n != 1 {
		t.Fatalf("%d concurrent identical cold requests ran %d plans, want exactly 1", callers, n)
	}
	for i := 1; i < callers; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d served different bytes", i)
		}
	}

	// The panel is cached now: another fetch is a hit, still one plan run.
	if rec := get(t, h, "/figures/fig4a?delta=0.02,0.08"); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat cold-δ fetch: X-Cache = %q, want hit", rec.Header().Get("X-Cache"))
	}
	// δ is irrelevant to non-sweep panels: this stays warm, no plan run.
	if rec := get(t, h, "/figures/fig1a?delta=0.02,0.08"); rec.Code != http.StatusOK {
		t.Fatalf("warm panel with custom δ: status %d", rec.Code)
	}
	if n := coldRuns.Load(); n != 1 {
		t.Fatalf("follow-up fetches ran %d extra plans", n-1)
	}
}

// TestServeRefreshAdvances pins the ingest path: replacing the trace file
// with a longer encoding and POSTing /refresh publishes the new last day,
// resumes from the warm pass's end-of-run checkpoint, invalidates stale
// cache entries, and serves tables bit-identical to a from-zero run over
// the grown trace.
func TestServeRefreshAdvances(t *testing.T) {
	baseRes, extRes := referenceResults(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "live.trace")
	copyFile(t, fxBase, tracePath)
	srv := newTestServer(t, tracePath, filepath.Join(dir, "ckpt"))
	h := srv.Handler()

	if rec := get(t, h, "/figures/fig1a"); !bytes.Equal(rec.Body.Bytes(), encodeFigure(t, baseRes, "fig1a", core.FormatTSV)) {
		t.Fatal("pre-refresh panel differs from the base from-zero run")
	}

	// No growth: refresh is a no-op.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/refresh", nil))
	var rr struct {
		Advanced bool  `json:"advanced"`
		LastDay  int32 `json:"last_day"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Advanced || rr.LastDay != fxBaseDays-1 {
		t.Fatalf("no-op refresh = %+v", rr)
	}

	// The trace gains 30 days via an atomic swap, as a writer would do.
	replaceFile(t, fxExt, tracePath)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/refresh", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Advanced || rr.LastDay != fxExtDays-1 {
		t.Fatalf("refresh after growth = %+v, want advanced to day %d", rr, fxExtDays-1)
	}
	snap := srv.Snapshot()
	if snap.ResumedFrom != fxBaseDays-1 {
		t.Errorf("refresh resumed from day %d, want %d (the warm pass's end-of-run checkpoint)", snap.ResumedFrom, fxBaseDays-1)
	}

	// Post-refresh responses carry the new day and the new tables; the
	// old generation's cache entries can never be served again.
	for _, id := range extRes.Figures() {
		rec := get(t, h, "/figures/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", id, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Trace-Day"); got != strconv.Itoa(fxExtDays-1) {
			t.Errorf("%s: X-Trace-Day = %q after refresh", id, got)
		}
		if want := encodeFigure(t, extRes, id, core.FormatTSV); !bytes.Equal(rec.Body.Bytes(), want) {
			t.Errorf("%s: post-refresh panel differs from the extended from-zero run", id)
		}
	}
}
