package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

// The package fixture: one 270-day trace and its 300-day extension,
// generated once. Same seed and preset, only the horizon differs, so the
// base file is an exact prefix of the extension (pinned by
// gen's TestExtendedHorizonKeepsPrefix) — replacing base with ext is the
// "trace gained days" scenario every refresh test exercises.
var (
	fxDir  string
	fxBase string
	fxExt  string
)

const (
	fxBaseDays = 270 // last day 269
	fxExtDays  = 300 // last day 299
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "serve-test-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fxDir = dir
	fxBase = filepath.Join(dir, "base.trace")
	fxExt = filepath.Join(dir, "ext.trace")
	gcfg := gen.SmallConfig()
	gcfg.Days = fxBaseDays
	if _, err := gen.GenerateToFile(gcfg, fxBase); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gcfg.Days = fxExtDays
	if _, err := gen.GenerateToFile(gcfg, fxExt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// serveTestConfig mirrors core's resumeTestConfig scale-down so the full
// warm plan stays fast, with the δ grid and size-distribution days pinned
// (they are part of the checkpoint fingerprint; see rranalyze -dist-days).
func serveTestConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Alpha.Interval = 2000
	cfg.Alpha.MinEdges = 4000
	cfg.Alpha.PolyDegree = 3
	cfg.Community.SnapshotEvery = 6
	cfg.Community.SizeDistDays = []int32{200, 230, 260} // on the day-20+6k grid, inside both horizons
	cfg.DeltaSweep = []float64{0.01, 0.1}
	cfg.PathEvery = 30
	cfg.PathSources = 30
	cfg.ClusteringSamples = 300
	cfg.CheckpointEvery = 90
	return cfg
}

// fromZero runs the full warm plan from day 0 over path — no checkpoint
// plane — and seals the result: the quiesced reference every served
// response is compared against.
func fromZero(t testing.TB, path string) *core.Result {
	t.Helper()
	src, err := trace.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunFigures(nil, src, serveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	res.Seal()
	return res
}

// Expected results are expensive (a full from-zero pass each), so they are
// computed once per process and shared; a sealed Result is read-only.
var (
	fxOnce    sync.Once
	fxBaseRes *core.Result
	fxExtRes  *core.Result
)

func referenceResults(t testing.TB) (base, ext *core.Result) {
	t.Helper()
	fxOnce.Do(func() {
		fxBaseRes = fromZero(t, fxBase)
		fxExtRes = fromZero(t, fxExt)
	})
	if fxBaseRes == nil || fxExtRes == nil {
		t.Fatal("reference results unavailable (an earlier reference pass failed)")
	}
	return fxBaseRes, fxExtRes
}

// encodeFigure renders one panel of a sealed result the same way the
// server does.
func encodeFigure(t testing.TB, res *core.Result, id string, f core.Format) []byte {
	t.Helper()
	tab, err := res.Figure(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// copyFile clones src to dst (plain write; use replaceFile for the
// atomic-swap path).
func copyFile(t testing.TB, src, dst string) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// replaceFile atomically swaps dst's content with src's via the
// tmp+rename idiom trace writers use, so no reader ever sees a torn file.
func replaceFile(t testing.TB, src, dst string) {
	t.Helper()
	tmp := dst + ".tmp"
	copyFile(t, src, tmp)
	if err := os.Rename(tmp, dst); err != nil {
		t.Fatal(err)
	}
}
