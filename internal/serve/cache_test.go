package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// put inserts one precomputed value through the public path.
func put(t *testing.T, c *Cache, key string, day int32, val []byte) {
	t.Helper()
	_, hit, err := c.GetOrCompute(key, day, func() ([]byte, error) { return val, nil })
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatalf("put %q: already cached", key)
	}
}

func TestCacheEvictsAtByteCap(t *testing.T) {
	c := NewCache(100)
	for i := 0; i < 5; i++ {
		put(t, c, fmt.Sprintf("k%d", i), 0, make([]byte, 40))
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("cache holds %d bytes, cap is 100", st.Bytes)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (two 40-byte values fit under 100)", st.Entries)
	}
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
	// LRU order: the two most recently inserted keys survive.
	for i, wantHit := range []bool{false, false, false, true, true} {
		_, hit, err := c.GetOrCompute(fmt.Sprintf("k%d", i), 0, func() ([]byte, error) { return make([]byte, 1), nil })
		if err != nil {
			t.Fatal(err)
		}
		if hit != wantHit {
			t.Errorf("k%d: hit = %v, want %v", i, hit, wantHit)
		}
	}
}

func TestCacheLRUOrderFollowsUse(t *testing.T) {
	c := NewCache(100)
	put(t, c, "a", 0, make([]byte, 40))
	put(t, c, "b", 0, make([]byte, 40))
	// Touch "a" so "b" is the least recently used, then overflow.
	if _, hit, _ := c.GetOrCompute("a", 0, nil); !hit {
		t.Fatal("a should be cached")
	}
	put(t, c, "c", 0, make([]byte, 40))
	if _, hit, _ := c.GetOrCompute("a", 0, func() ([]byte, error) { return nil, errors.New("recompute") }); !hit {
		t.Error("a was evicted; want b (the LRU entry) evicted instead")
	}
	if _, _, err := c.GetOrCompute("b", 0, func() ([]byte, error) { return nil, errors.New("gone") }); err == nil {
		t.Error("b still cached; want it evicted")
	}
}

func TestCacheRejectsOversizeValue(t *testing.T) {
	c := NewCache(10)
	put(t, c, "big", 0, make([]byte, 11))
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize value was stored: %+v", st)
	}
}

// TestCacheSingleFlight pins the coalescing contract: 100 concurrent
// requests for the same uncached key run the compute function exactly
// once, and every caller gets its bytes.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(1 << 20)
	const callers = 100
	var computes atomic.Int64
	release := make(chan struct{})
	want := []byte("panel-bytes")

	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, _, err := c.GetOrCompute("fig4a", 0, func() ([]byte, error) {
				computes.Add(1)
				<-release // hold the flight open until all callers have arrived
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = val
		}(i)
	}
	// Wait until the stragglers are either coalesced onto the flight or
	// done; the leader blocks on release, so coalesced+1 == callers means
	// everyone is accounted for.
	for {
		st := c.Stats()
		if st.Coalesced+st.Misses == callers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for %d concurrent callers, want exactly 1", n, callers)
	}
	for i, val := range results {
		if !bytes.Equal(val, want) {
			t.Fatalf("caller %d got %q, want %q", i, val, want)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != callers-1 {
		t.Fatalf("misses = %d, coalesced = %d; want 1 and %d", st.Misses, st.Coalesced, callers-1)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := NewCache(1 << 10)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", 0, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	val, hit, err := c.GetOrCompute("k", 0, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(val) != "ok" {
		t.Fatalf("after failed compute: val=%q hit=%v err=%v; want fresh successful compute", val, hit, err)
	}
	if _, hit, _ := c.GetOrCompute("k", 0, nil); !hit {
		t.Fatal("successful value was not cached")
	}
}

// TestCacheDropOtherDays pins invalidation-on-advance: publishing a new
// trace day drops every entry of older generations.
func TestCacheDropOtherDays(t *testing.T) {
	c := NewCache(1 << 10)
	put(t, c, "fp|219|fig1a|-|tsv", 219, []byte("old"))
	put(t, c, "fp|219|fig2a|-|tsv", 219, []byte("old"))
	put(t, c, "fp|299|fig1a|-|tsv", 299, []byte("new"))
	c.DropOtherDays(299)
	st := c.Stats()
	if st.Entries != 1 || st.Dropped != 2 {
		t.Fatalf("entries = %d, dropped = %d; want 1 and 2", st.Entries, st.Dropped)
	}
	if _, hit, _ := c.GetOrCompute("fp|299|fig1a|-|tsv", 299, nil); !hit {
		t.Fatal("current-day entry was dropped")
	}
	if _, _, err := c.GetOrCompute("fp|219|fig1a|-|tsv", 219, func() ([]byte, error) { return nil, errors.New("gone") }); err == nil {
		t.Fatal("stale-day entry survived DropOtherDays")
	}
}
