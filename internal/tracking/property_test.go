package tracking

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/stats"
)

// randomSnapshots drives a tracker with random (but internally consistent)
// snapshot assignments and returns it plus the last snapshot result.
func randomSnapshots(seed int64, snapshots int) (*Tracker, *SnapshotResult) {
	rng := stats.NewRand(seed)
	tr := NewTracker(3)
	n := 30 + rng.Intn(40)
	g := graph.New(n)
	g.EnsureNode(graph.NodeID(n - 1))
	for i := 0; i < 3*n; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	var last *SnapshotResult
	assign := make(Assignment, n)
	k := 2 + rng.Intn(5)
	for i := range assign {
		assign[i] = int32(rng.Intn(k))
	}
	for s := 0; s < snapshots; s++ {
		// Perturb a few labels each snapshot.
		for j := 0; j < n/10+1; j++ {
			assign[rng.Intn(n)] = int32(rng.Intn(k))
		}
		last = tr.Advance(int32(s*3), g, assign)
	}
	return tr, last
}

// TestTrackedCommunitiesAreDisjoint: a node belongs to at most one tracked
// community per snapshot.
func TestTrackedCommunitiesAreDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		_, snap := randomSnapshots(seed, 5)
		seen := map[graph.NodeID]bool{}
		for _, nodes := range snap.Communities {
			for _, u := range nodes {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHistoriesConsistent: dead communities have death >= birth; alive ones
// report non-negative lifetimes; merged ones name a destination.
func TestHistoriesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		tr, _ := randomSnapshots(seed, 8)
		for _, h := range tr.Histories() {
			if h.Death >= 0 && h.Death < h.Birth {
				return false
			}
			if h.Lifetime(tr.LastDay()) < 0 {
				return false
			}
			if h.MergedInto != 0 && h.Death < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEventsReferenceRealIDs: every event's community id has a history.
func TestEventsReferenceRealIDs(t *testing.T) {
	f := func(seed int64) bool {
		tr, _ := randomSnapshots(seed, 8)
		hist := tr.Histories()
		for _, ev := range tr.Events() {
			if hist[ev.ID] == nil {
				return false
			}
			if ev.Type == Merge && hist[ev.Other] == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSimilarityWithinUnit: matched similarities always lie in (0, 1].
func TestSimilarityWithinUnit(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		tr := NewTracker(3)
		n := 30
		g := graph.New(n)
		g.EnsureNode(graph.NodeID(n - 1))
		for i := 0; i < 60; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		assign := make(Assignment, n)
		for i := range assign {
			assign[i] = int32(i % 4)
		}
		for s := 0; s < 5; s++ {
			res := tr.Advance(int32(s), g, assign)
			if res.AvgSimilarity < 0 || res.AvgSimilarity > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
