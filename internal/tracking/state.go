package tracking

import (
	"repro/internal/checkpoint"
	"repro/internal/graph"
)

// Checkpoint codec for the tracker: everything the cross-snapshot
// matching depends on — the previous snapshot's communities (in their
// deterministic sorted order), the inter-community tie counts, the id
// allocator, and the accumulated events and histories. The transient
// selfSim map is rebuilt inside every Advance and is deliberately not
// state.

// SaveState serializes the tracker through e.
func (t *Tracker) SaveState(e *checkpoint.Encoder) {
	e.I64(t.nextID)
	e.I32(t.lastDay)
	e.Bool(t.prev != nil)
	e.U64(uint64(len(t.prev)))
	for _, c := range t.prev {
		e.I64(c.id)
		e.U64(uint64(len(c.nodes)))
		for _, u := range c.nodes {
			e.I32(u)
		}
	}
	e.U64(uint64(len(t.prevTie)))
	for _, id := range checkpoint.SortedKeys(t.prevTie) {
		e.I64(id)
		ties := t.prevTie[id]
		e.U64(uint64(len(ties)))
		for _, other := range checkpoint.SortedKeys(ties) {
			e.I64(other)
			e.I64(ties[other])
		}
	}
	e.U64(uint64(len(t.events)))
	for _, ev := range t.events {
		e.I32(ev.Day)
		e.U64(uint64(ev.Type))
		e.I64(ev.ID)
		e.I64(ev.Other)
		e.F64(ev.Similarity)
		e.Int(ev.SizeA)
		e.Int(ev.SizeB)
		e.Bool(ev.StrongestTie)
		e.I64(ev.StrongestTieWith)
	}
	e.U64(uint64(len(t.hist)))
	for _, id := range checkpoint.SortedKeys(t.hist) {
		h := t.hist[id]
		e.I64(h.ID)
		e.I32(h.Birth)
		e.I32(h.Death)
		e.I64(h.MergedInto)
		e.U64(uint64(len(h.Features)))
		for _, f := range h.Features {
			e.I32(f.Day)
			e.Int(f.Size)
			e.F64(f.InRatio)
			e.F64(f.SelfSim)
		}
	}
}

// LoadState restores a freshly constructed tracker from d.
func (t *Tracker) LoadState(d *checkpoint.Decoder) error {
	t.nextID = d.I64()
	t.lastDay = d.I32()
	hadPrev := d.Bool()
	n := d.Len()
	t.prev = nil
	if hadPrev {
		t.prev = make([]*community, 0, min(n, 1<<16))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		c := &community{id: d.I64()}
		cn := d.Len()
		c.nodes = make([]graph.NodeID, 0, min(cn, 1<<16))
		c.set = make(map[graph.NodeID]struct{}, min(cn, 1<<16))
		for j := 0; j < cn && d.Err() == nil; j++ {
			u := d.I32()
			c.nodes = append(c.nodes, u)
			c.set[u] = struct{}{}
		}
		t.prev = append(t.prev, c)
	}
	n = d.Len()
	t.prevTie = nil
	if n > 0 {
		t.prevTie = make(map[int64]map[int64]int64, min(n, 1<<16))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		id := d.I64()
		tn := d.Len()
		ties := make(map[int64]int64, min(tn, 1<<16))
		for j := 0; j < tn && d.Err() == nil; j++ {
			other := d.I64()
			ties[other] = d.I64()
		}
		t.prevTie[id] = ties
	}
	n = d.Len()
	t.events = make([]Event, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		t.events = append(t.events, Event{
			Day:  d.I32(),
			Type: EventType(d.U64()),
			ID:   d.I64(), Other: d.I64(),
			Similarity: d.F64(),
			SizeA:      d.Int(), SizeB: d.Int(),
			StrongestTie: d.Bool(), StrongestTieWith: d.I64(),
		})
	}
	n = d.Len()
	t.hist = make(map[int64]*History, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		h := &History{ID: d.I64(), Birth: d.I32(), Death: d.I32(), MergedInto: d.I64()}
		fn := d.Len()
		h.Features = make([]Features, 0, min(fn, 1<<16))
		for j := 0; j < fn && d.Err() == nil; j++ {
			h.Features = append(h.Features, Features{
				Day: d.I32(), Size: d.Int(), InRatio: d.F64(), SelfSim: d.F64(),
			})
		}
		t.hist[h.ID] = h
	}
	return d.Err()
}
