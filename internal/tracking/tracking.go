// Package tracking follows communities across graph snapshots the way the
// paper does in §4.1: communities detected on consecutive snapshots are
// matched by Jaccard similarity, and the matching is interpreted as
// continuation, birth, death, merge, or split events.
//
// The paper's definitions, which this package implements literally:
//
//   - a community A *splits* at snapshot i when A is the highest-correlated
//     previous community for at least two communities at snapshot i+1; the
//     successor most similar to A keeps A's identity, the others are born;
//   - at least two communities A, B *merge* into C when C is the best match
//     of each; C takes the identity of the most similar parent, the other
//     parents die;
//   - communities matched one-to-one continue under the same identity.
//
// The tracker also records, per snapshot, the structural features used by
// the paper's merge predictor (§4.3) and the inter-community tie strengths
// used for the strongest-tie merge-destination analysis (Fig 6c).
package tracking

import (
	"sort"

	"repro/internal/graph"
)

// EventType classifies a community lifecycle event.
type EventType uint8

const (
	// Birth: a community with no sufficiently similar predecessor.
	Birth EventType = iota
	// Death: a community absorbed by a merge (its identity ends).
	Death
	// Merge: two or more communities fused; emitted once per dying parent.
	Merge
	// Split: one community divided; emitted once per split parent.
	Split
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case Birth:
		return "birth"
	case Death:
		return "death"
	case Merge:
		return "merge"
	case Split:
		return "split"
	default:
		return "unknown"
	}
}

// Event is one community lifecycle event.
type Event struct {
	Day  int32
	Type EventType
	// ID is the community the event happened to. For Merge it is the
	// dying parent; for Split the splitting parent; for Birth the new
	// community.
	ID int64
	// Other is the counterparty: the surviving community for Merge, zero
	// otherwise.
	Other int64
	// Similarity is the Jaccard similarity that drove the decision.
	Similarity float64
	// SizeA and SizeB record, for Merge and Split, the sizes of the two
	// largest communities involved (used for Fig 6a): for merges, the
	// dying and surviving parents; for splits, the two largest children.
	SizeA, SizeB int
	// StrongestTie reports, for Merge events, whether the surviving
	// community was the one with the largest edge count to the dying
	// community in the previous snapshot (Fig 6c).
	StrongestTie bool
	// StrongestTieWith is the community that actually had the strongest
	// tie to the dying one (diagnostic; 0 when it had no ties).
	StrongestTieWith int64
}

// Features is the per-snapshot structural description of a community used
// by the merge predictor (§4.3): size, in-degree ratio (edges inside the
// community over the total degree of its members), and self-similarity to
// the community's previous incarnation.
type Features struct {
	Day     int32
	Size    int
	InRatio float64
	SelfSim float64
}

// History is the lifetime record of one tracked community identity.
type History struct {
	ID    int64
	Birth int32 // day first seen
	Death int32 // day absorbed; -1 while alive
	// MergedInto is the surviving community for dead ones, 0 otherwise.
	MergedInto int64
	// Features has one entry per snapshot in which the community existed.
	Features []Features
}

// Alive reports whether the community was still tracked at the last
// processed snapshot.
func (h *History) Alive() bool { return h.Death < 0 }

// Lifetime returns the community's lifetime in days: death (or `now` for
// the living) minus birth.
func (h *History) Lifetime(now int32) int32 {
	if h.Death >= 0 {
		return h.Death - h.Birth
	}
	return now - h.Birth
}

// community is one tracked community instance in the current snapshot.
type community struct {
	id    int64
	nodes []graph.NodeID
	set   map[graph.NodeID]struct{}
}

// Tracker matches communities across snapshots and accumulates events,
// histories, and tie information.
type Tracker struct {
	// MinSize filters out communities smaller than this (the paper uses
	// 10 to "avoid small cliques").
	MinSize int
	// MergeContainment is the minimum fraction of a dying community's
	// nodes that must land in the destination (the community receiving
	// the most of its members) for the event to count as a merge rather
	// than a dissolution. The default 0 mirrors the paper, which treats
	// merging as the only cause of community death: any vanishing
	// community with surviving members is merged into its destination.
	// Raise it (e.g. to 0.5) for a strict "contributed most of their
	// nodes" reading — the ablation bench compares both.
	MergeContainment float64

	nextID  int64
	prev    []*community
	prevTie map[int64]map[int64]int64 // prev snapshot's inter-community edge counts
	selfSim map[int64]float64         // current snapshot's matched similarity per id
	events  []Event
	hist    map[int64]*History
	lastDay int32
}

// NewTracker creates a tracker with the given minimum community size.
func NewTracker(minSize int) *Tracker {
	if minSize < 1 {
		minSize = 1
	}
	return &Tracker{MinSize: minSize, hist: make(map[int64]*History), lastDay: -1}
}

// Assignment is a per-node community labeling, -1 for unassigned nodes.
// Labels must be dense enough to group by; they carry no cross-snapshot
// meaning (identity comes from the tracker).
type Assignment []int32

// SnapshotResult reports the tracked communities of one snapshot.
type SnapshotResult struct {
	Day int32
	// Communities maps tracked identity -> member nodes.
	Communities map[int64][]graph.NodeID
	// AvgSimilarity is the mean Jaccard similarity between matched
	// community incarnations in the previous and current snapshot
	// (the robustness metric of Fig 4b). Zero when nothing matched.
	AvgSimilarity float64
	// NodeCommunity maps node -> tracked identity (only community nodes).
	NodeCommunity map[graph.NodeID]int64
}

// Advance feeds the tracker the next snapshot: the graph as of `day` and a
// community assignment for its nodes. It returns the tracked view. The
// graph is only read, so per-δ trackers fanned out by the sweep can key
// their histories off one shared frozen snapshot (graph.Frozen) instead of
// each maintaining a private live graph.
func (t *Tracker) Advance(day int32, g graph.View, assign Assignment) *SnapshotResult {
	t.lastDay = day
	// Group nodes by label, filtering small communities.
	byLabel := map[int32][]graph.NodeID{}
	for u, c := range assign {
		if c >= 0 {
			byLabel[c] = append(byLabel[c], graph.NodeID(u))
		}
	}
	var cur []*community
	for _, nodes := range byLabel {
		if len(nodes) < t.MinSize {
			continue
		}
		set := make(map[graph.NodeID]struct{}, len(nodes))
		for _, u := range nodes {
			set[u] = struct{}{}
		}
		cur = append(cur, &community{nodes: nodes, set: set})
	}
	// Deterministic order (labels iterate randomly out of the map).
	sort.Slice(cur, func(i, j int) bool { return cur[i].nodes[0] < cur[j].nodes[0] })

	simSum, simCount := t.match(day, cur)

	// Record features and build result.
	res := &SnapshotResult{
		Day:           day,
		Communities:   make(map[int64][]graph.NodeID, len(cur)),
		NodeCommunity: make(map[graph.NodeID]int64),
	}
	if simCount > 0 {
		res.AvgSimilarity = simSum / float64(simCount)
	}
	nodeComm := make(map[graph.NodeID]int64, g.NumNodes()/2)
	for _, c := range cur {
		res.Communities[c.id] = c.nodes
		for _, u := range c.nodes {
			nodeComm[u] = c.id
			res.NodeCommunity[u] = c.id
		}
	}
	t.recordFeatures(day, g, cur, nodeComm)
	t.prevTie = interCommunityTies(g, nodeComm)
	t.prev = cur
	return res
}

// match assigns identities to cur communities and emits events. It returns
// the sum and count of matched similarities.
func (t *Tracker) match(day int32, cur []*community) (simSum float64, simCount int) {
	t.selfSim = make(map[int64]float64, len(cur))
	if t.prev == nil {
		for _, c := range cur {
			c.id = t.newID(day)
		}
		return 0, 0
	}
	// Inverted index: node -> previous community index.
	prevOf := map[graph.NodeID]int{}
	for i, p := range t.prev {
		for _, u := range p.nodes {
			prevOf[u] = i
		}
	}
	// Overlaps between prev i and cur j. Iteration over pairs is sorted so
	// that equal-similarity ties break deterministically (lowest index).
	type pair struct{ i, j int }
	overlap := map[pair]int{}
	for j, c := range cur {
		for _, u := range c.nodes {
			if i, ok := prevOf[u]; ok {
				overlap[pair{i, j}]++
			}
		}
	}
	pairs := make([]pair, 0, len(overlap))
	for p := range overlap {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	sim := func(i, j int) float64 {
		inter := overlap[pair{i, j}]
		union := len(t.prev[i].nodes) + len(cur[j].nodes) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	// containment(i, j) is the fraction of prev community i's nodes that
	// ended up in cur community j. The paper's merge definition requires
	// parents to "contribute most of their nodes" to the destination;
	// below the threshold a vanishing community dissolved, not merged.
	containment := func(i, j int) float64 {
		return float64(overlap[pair{i, j}]) / float64(len(t.prev[i].nodes))
	}
	// Best matches in both directions.
	bestNewFor := make([]int, len(t.prev)) // prev i -> cur j (or -1)
	bestNewSim := make([]float64, len(t.prev))
	for i := range bestNewFor {
		bestNewFor[i] = -1
	}
	bestOldFor := make([]int, len(cur)) // cur j -> prev i (or -1)
	bestOldSim := make([]float64, len(cur))
	for j := range bestOldFor {
		bestOldFor[j] = -1
	}
	for _, p := range pairs {
		s := sim(p.i, p.j)
		if s > bestNewSim[p.i] {
			bestNewSim[p.i], bestNewFor[p.i] = s, p.j
		}
		if s > bestOldSim[p.j] {
			bestOldSim[p.j], bestOldFor[p.j] = s, p.i
		}
	}

	// Identity assignment: claimants per cur community are the prev
	// communities whose best (Jaccard) match is j; the most similar
	// claimant carries its identity forward.
	claimants := make([][]int, len(cur))
	for i, j := range bestNewFor {
		if j >= 0 {
			claimants[j] = append(claimants[j], i)
		}
	}
	survivedAs := make([]int, len(t.prev)) // prev i -> cur j whose id it carries, or -1
	for i := range survivedAs {
		survivedAs[i] = -1
	}
	for j, c := range cur {
		cl := claimants[j]
		if len(cl) == 0 {
			c.id = t.newID(day)
			t.events = append(t.events, Event{Day: day, Type: Birth, ID: c.id})
			continue
		}
		winner := cl[0]
		for _, i := range cl[1:] {
			if sim(i, j) > sim(winner, j) {
				winner = i
			}
		}
		c.id = t.prev[winner].id
		survivedAs[winner] = j
		t.selfSim[c.id] = sim(winner, j)
		simSum += sim(winner, j)
		simCount++
	}

	// Merge/death classification for prev communities whose identity
	// ended. The paper defines merging by node contribution: a community
	// merged into the cur community that received most of its nodes.
	// majority[j] lists prev communities contributing a majority to j
	// (the union that "became" j) — used for sizes and the strongest-tie
	// check of Fig 6c.
	majority := make([][]int, len(cur))
	bestDest := make([]int, len(t.prev)) // prev i -> argmax_j overlap, or -1
	for i := range bestDest {
		bestDest[i] = -1
	}
	bestOv := make([]int, len(t.prev))
	for _, p := range pairs {
		if ov := overlap[p]; ov > bestOv[p.i] {
			bestOv[p.i], bestDest[p.i] = ov, p.j
		}
	}
	for i := range t.prev {
		if j := bestDest[i]; j >= 0 && containment(i, j) > t.mergeContainment() {
			majority[j] = append(majority[j], i)
		}
	}
	for i, p := range t.prev {
		if survivedAs[i] >= 0 {
			continue
		}
		j := bestDest[i]
		if j < 0 || containment(i, j) <= t.mergeContainment() {
			// Dissolved: members scattered. Similarity records the best
			// containment for diagnostics.
			c := 0.0
			if j >= 0 {
				c = containment(i, j)
			}
			t.events = append(t.events, Event{Day: day, Type: Death, ID: p.id, Similarity: c})
			if h := t.hist[p.id]; h != nil {
				h.Death = day
			}
			continue
		}
		// Merged into cur[j]. The union it merged with is every other
		// majority contributor to j plus j's identity carrier.
		unionIDs := map[int64]bool{cur[j].id: true}
		sizeB := 0
		for _, k := range majority[j] {
			unionIDs[t.prev[k].id] = true
			if k != i && len(t.prev[k].nodes) > sizeB {
				sizeB = len(t.prev[k].nodes)
			}
		}
		if sizeB == 0 {
			sizeB = len(cur[j].nodes)
		}
		tieComm := t.strongestTieOf(p.id)
		t.events = append(t.events, Event{
			Day:              day,
			Type:             Merge,
			ID:               p.id,
			Other:            cur[j].id,
			Similarity:       sim(i, j),
			SizeA:            len(p.nodes),
			SizeB:            sizeB,
			StrongestTie:     tieComm != 0 && unionIDs[tieComm],
			StrongestTieWith: tieComm,
		})
		if h := t.hist[p.id]; h != nil {
			h.Death = day
			h.MergedInto = cur[j].id
		}
	}

	// Split detection: prev community that is best-old for >= 2 cur comms.
	successors := make([][]int, len(t.prev))
	for j, i := range bestOldFor {
		if i >= 0 {
			successors[i] = append(successors[i], j)
		}
	}
	for i, succ := range successors {
		if len(succ) < 2 {
			continue
		}
		// Two largest children (Fig 6a uses the largest two).
		sort.Slice(succ, func(a, b int) bool {
			return len(cur[succ[a]].nodes) > len(cur[succ[b]].nodes)
		})
		t.events = append(t.events, Event{
			Day:        day,
			Type:       Split,
			ID:         t.prev[i].id,
			Similarity: bestNewSim[i],
			SizeA:      len(cur[succ[0]].nodes),
			SizeB:      len(cur[succ[1]].nodes),
		})
	}

	return simSum, simCount
}

func (t *Tracker) newID(day int32) int64 {
	t.nextID++
	id := t.nextID
	t.hist[id] = &History{ID: id, Birth: day, Death: -1}
	return id
}

// strongestTieOf returns the community with the most edges to `id` in the
// previous snapshot, or 0 when id had no inter-community edges.
func (t *Tracker) strongestTieOf(id int64) int64 {
	ties := t.prevTie[id]
	var bestComm int64
	var best int64 = -1
	for c, n := range ties {
		if n > best || (n == best && c < bestComm) {
			best, bestComm = n, c
		}
	}
	return bestComm
}

// recordFeatures appends this snapshot's Features for every live community.
func (t *Tracker) recordFeatures(day int32, g graph.View, cur []*community, nodeComm map[graph.NodeID]int64) {
	for _, c := range cur {
		h := t.hist[c.id]
		if h == nil {
			h = &History{ID: c.id, Birth: day, Death: -1}
			t.hist[c.id] = h
		}
		h.Death = -1 // it exists now; resurrect if it was marked dead this day
		intra := int64(0)
		degSum := int64(0)
		for _, u := range c.nodes {
			degSum += int64(g.Degree(u))
			g.ForEachNeighbor(u, func(v graph.NodeID) {
				if nodeComm[v] == c.id {
					intra++
				}
			})
		}
		inRatio := 0.0
		if degSum > 0 {
			inRatio = float64(intra) / float64(degSum) // intra counted twice / degsum
		}
		h.Features = append(h.Features, Features{Day: day, Size: len(c.nodes), InRatio: inRatio, SelfSim: t.selfSim[c.id]})
	}
}

// interCommunityTies counts edges between tracked communities.
func interCommunityTies(g graph.View, nodeComm map[graph.NodeID]int64) map[int64]map[int64]int64 {
	out := map[int64]map[int64]int64{}
	g.ForEachEdge(func(u, v graph.NodeID) {
		cu, okU := nodeComm[u]
		cv, okV := nodeComm[v]
		if !okU || !okV || cu == cv {
			return
		}
		add := func(a, b int64) {
			m := out[a]
			if m == nil {
				m = map[int64]int64{}
				out[a] = m
			}
			m[b]++
		}
		add(cu, cv)
		add(cv, cu)
	})
	return out
}

// Events returns all lifecycle events recorded so far.
func (t *Tracker) Events() []Event { return t.events }

// Histories returns the per-identity lifetime records.
func (t *Tracker) Histories() map[int64]*History { return t.hist }

// LastDay returns the most recent snapshot day processed, -1 if none.
func (t *Tracker) LastDay() int32 { return t.lastDay }

// mergeContainment returns the configured containment threshold.
func (t *Tracker) mergeContainment() float64 { return t.MergeContainment }
