package tracking

import (
	"testing"

	"repro/internal/graph"
)

// assignOf builds an Assignment of length n with the given labeled groups;
// unlisted nodes get -1.
func assignOf(n int, groups ...[]graph.NodeID) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	for label, grp := range groups {
		for _, u := range grp {
			a[u] = int32(label)
		}
	}
	return a
}

// cliqueGraph builds a graph where each listed group is a clique.
func cliqueGraph(n int, groups ...[]graph.NodeID) *graph.Graph {
	g := graph.New(n)
	g.EnsureNode(graph.NodeID(n - 1))
	for _, grp := range groups {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				g.AddEdge(grp[i], grp[j])
			}
		}
	}
	return g
}

func ids(r *SnapshotResult) []int64 {
	var out []int64
	for id := range r.Communities {
		out = append(out, id)
	}
	return out
}

func TestFirstSnapshotBirthsNoEvents(t *testing.T) {
	tr := NewTracker(2)
	grp := []graph.NodeID{0, 1, 2}
	g := cliqueGraph(3, grp)
	r := tr.Advance(0, g, assignOf(3, grp))
	if len(r.Communities) != 1 {
		t.Fatalf("communities = %d", len(r.Communities))
	}
	if len(tr.Events()) != 0 {
		t.Fatalf("first snapshot must emit no events, got %v", tr.Events())
	}
	if r.AvgSimilarity != 0 {
		t.Fatalf("avg sim = %v", r.AvgSimilarity)
	}
}

func TestMinSizeFilter(t *testing.T) {
	tr := NewTracker(5)
	grp := []graph.NodeID{0, 1, 2}
	g := cliqueGraph(3, grp)
	r := tr.Advance(0, g, assignOf(3, grp))
	if len(r.Communities) != 0 {
		t.Fatal("small community must be filtered")
	}
}

func TestContinuationKeepsIdentity(t *testing.T) {
	tr := NewTracker(2)
	grp := []graph.NodeID{0, 1, 2, 3}
	g := cliqueGraph(5, grp)
	r1 := tr.Advance(0, g, assignOf(5, grp))
	id := ids(r1)[0]
	// Next snapshot: same community plus node 4.
	grp2 := []graph.NodeID{0, 1, 2, 3, 4}
	g2 := cliqueGraph(5, grp2)
	r2 := tr.Advance(3, g2, assignOf(5, grp2))
	if len(r2.Communities) != 1 {
		t.Fatalf("communities = %d", len(r2.Communities))
	}
	if ids(r2)[0] != id {
		t.Fatalf("identity changed: %d -> %d", id, ids(r2)[0])
	}
	if r2.AvgSimilarity < 0.7 {
		t.Fatalf("avg sim = %v, want 4/5", r2.AvgSimilarity)
	}
}

func TestBirthEvent(t *testing.T) {
	tr := NewTracker(2)
	a := []graph.NodeID{0, 1, 2}
	g := cliqueGraph(8, a)
	tr.Advance(0, g, assignOf(8, a))
	// New disjoint community appears.
	b := []graph.NodeID{4, 5, 6}
	g2 := cliqueGraph(8, a, b)
	r := tr.Advance(3, g2, assignOf(8, a, b))
	if len(r.Communities) != 2 {
		t.Fatalf("communities = %d", len(r.Communities))
	}
	var births int
	for _, ev := range tr.Events() {
		if ev.Type == Birth {
			births++
			if ev.Day != 3 {
				t.Fatalf("birth day = %d", ev.Day)
			}
		}
	}
	if births != 1 {
		t.Fatalf("births = %d", births)
	}
}

func TestMergeEvent(t *testing.T) {
	tr := NewTracker(2)
	a := []graph.NodeID{0, 1, 2, 3, 4, 5}
	b := []graph.NodeID{6, 7, 8}
	g := cliqueGraph(9, a, b)
	// Tie edges: b touches a via 2 edges so a is b's strongest tie.
	g.AddEdge(5, 6)
	g.AddEdge(4, 7)
	r1 := tr.Advance(0, g, assignOf(9, a, b))
	if len(r1.Communities) != 2 {
		t.Fatalf("start communities = %d", len(r1.Communities))
	}
	var idA, idB int64
	for id, nodes := range r1.Communities {
		if len(nodes) == 6 {
			idA = id
		} else {
			idB = id
		}
	}
	// Merge: all 9 nodes in one community.
	all := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}
	g2 := cliqueGraph(9, all)
	r2 := tr.Advance(3, g2, assignOf(9, all))
	if len(r2.Communities) != 1 {
		t.Fatalf("end communities = %d", len(r2.Communities))
	}
	if ids(r2)[0] != idA {
		t.Fatalf("merged identity %d, want big community %d", ids(r2)[0], idA)
	}
	var merges int
	for _, ev := range tr.Events() {
		if ev.Type == Merge {
			merges++
			if ev.ID != idB || ev.Other != idA {
				t.Fatalf("merge %d -> %d, want %d -> %d", ev.ID, ev.Other, idB, idA)
			}
			if ev.SizeA != 3 || ev.SizeB != 6 {
				t.Fatalf("merge sizes %d,%d", ev.SizeA, ev.SizeB)
			}
			if !ev.StrongestTie {
				t.Fatal("merge should be with strongest-tie community")
			}
		}
	}
	if merges != 1 {
		t.Fatalf("merges = %d", merges)
	}
	// History: idB dead, merged into idA.
	h := tr.Histories()[idB]
	if h == nil || h.Alive() || h.MergedInto != idA || h.Death != 3 {
		t.Fatalf("history = %+v", h)
	}
	if got := h.Lifetime(99); got != 3 {
		t.Fatalf("lifetime = %d", got)
	}
}

func TestSplitEvent(t *testing.T) {
	tr := NewTracker(2)
	all := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	g := cliqueGraph(8, all)
	r1 := tr.Advance(0, g, assignOf(8, all))
	origID := ids(r1)[0]
	// Split into two halves (5 and 3 nodes → identity follows higher sim).
	a := []graph.NodeID{0, 1, 2, 3, 4}
	b := []graph.NodeID{5, 6, 7}
	g2 := cliqueGraph(8, a, b)
	r2 := tr.Advance(3, g2, assignOf(8, a, b))
	if len(r2.Communities) != 2 {
		t.Fatalf("communities = %d", len(r2.Communities))
	}
	// The larger half keeps the identity.
	if got := len(r2.Communities[origID]); got != 5 {
		t.Fatalf("identity kept by community of size %d, want 5", got)
	}
	var splits, births int
	for _, ev := range tr.Events() {
		switch ev.Type {
		case Split:
			splits++
			if ev.ID != origID {
				t.Fatalf("split id = %d", ev.ID)
			}
			if ev.SizeA != 5 || ev.SizeB != 3 {
				t.Fatalf("split sizes %d,%d", ev.SizeA, ev.SizeB)
			}
		case Birth:
			births++
		}
	}
	if splits != 1 || births != 1 {
		t.Fatalf("splits=%d births=%d", splits, births)
	}
}

func TestDissolutionDeath(t *testing.T) {
	tr := NewTracker(3)
	a := []graph.NodeID{0, 1, 2}
	g := cliqueGraph(6, a)
	r1 := tr.Advance(0, g, assignOf(6, a))
	id := ids(r1)[0]
	// Community shrinks below MinSize → vanishes.
	g2 := cliqueGraph(6, []graph.NodeID{0, 1})
	r2 := tr.Advance(3, g2, assignOf(6, []graph.NodeID{0, 1}))
	if len(r2.Communities) != 0 {
		t.Fatalf("communities = %d", len(r2.Communities))
	}
	var deaths int
	for _, ev := range tr.Events() {
		if ev.Type == Death && ev.ID == id {
			deaths++
		}
	}
	if deaths != 1 {
		t.Fatalf("deaths = %d", deaths)
	}
	if tr.Histories()[id].Alive() {
		t.Fatal("history must be dead")
	}
}

func TestFeaturesRecorded(t *testing.T) {
	tr := NewTracker(2)
	a := []graph.NodeID{0, 1, 2, 3}
	g := cliqueGraph(6, a)
	// One external edge so in-ratio < 1.
	g.AddEdge(3, 4)
	r := tr.Advance(0, g, assignOf(6, a))
	id := ids(r)[0]
	h := tr.Histories()[id]
	if len(h.Features) != 1 {
		t.Fatalf("features = %+v", h.Features)
	}
	f := h.Features[0]
	if f.Size != 4 || f.Day != 0 {
		t.Fatalf("feature = %+v", f)
	}
	// Clique of 4 has 6 intra edges (12 endpoint slots); degree sum = 13.
	want := 12.0 / 13.0
	if d := f.InRatio - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("in-ratio = %v, want %v", f.InRatio, want)
	}
	if f.SelfSim != 0 {
		t.Fatalf("first snapshot self-sim = %v", f.SelfSim)
	}
	// Second snapshot: identical community, self-sim = 1.
	tr.Advance(3, g, assignOf(6, a))
	h = tr.Histories()[id]
	if len(h.Features) != 2 || h.Features[1].SelfSim != 1 {
		t.Fatalf("features = %+v", h.Features)
	}
}

func TestStrongestTieNegativeCase(t *testing.T) {
	tr := NewTracker(2)
	a := []graph.NodeID{0, 1, 2, 3}  // big
	b := []graph.NodeID{4, 5, 6}     // dies
	c := []graph.NodeID{7, 8, 9, 10} // b's strongest tie — but b merges into a
	g := cliqueGraph(11, a, b, c)
	g.AddEdge(4, 7) // b-c ties: 2 edges
	g.AddEdge(5, 8)
	g.AddEdge(6, 0) // b-a tie: 1 edge
	tr.Advance(0, g, assignOf(11, a, b, c))
	// b merges into a (c remains).
	ab := []graph.NodeID{0, 1, 2, 3, 4, 5, 6}
	g2 := cliqueGraph(11, ab, c)
	tr.Advance(3, g2, assignOf(11, ab, c))
	var found bool
	for _, ev := range tr.Events() {
		if ev.Type == Merge {
			found = true
			if ev.StrongestTie {
				t.Fatal("merge was NOT with the strongest-tie community")
			}
		}
	}
	if !found {
		t.Fatal("no merge event")
	}
}

func TestEventTypeString(t *testing.T) {
	names := map[EventType]string{Birth: "birth", Death: "death", Merge: "merge", Split: "split", EventType(9): "unknown"}
	for et, want := range names {
		if et.String() != want {
			t.Fatalf("%d.String() = %q", et, et.String())
		}
	}
}

func TestLastDay(t *testing.T) {
	tr := NewTracker(2)
	if tr.LastDay() != -1 {
		t.Fatal("fresh tracker LastDay")
	}
	grp := []graph.NodeID{0, 1}
	tr.Advance(7, cliqueGraph(2, grp), assignOf(2, grp))
	if tr.LastDay() != 7 {
		t.Fatalf("LastDay = %d", tr.LastDay())
	}
}

func TestNewTrackerMinSizeFloor(t *testing.T) {
	tr := NewTracker(0)
	if tr.MinSize != 1 {
		t.Fatalf("MinSize = %d", tr.MinSize)
	}
}
