package powerlaw

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// AlphaSample is one checkpoint of the α(t) evolution (Fig 3c): the fitted
// exponent under both destination rules at a given network edge count.
type AlphaSample struct {
	Edges       int64
	Day         int32
	AlphaHigher float64
	AlphaRandom float64
	MSEHigher   float64
	MSERandom   float64
}

// AlphaTracker drives two PEEstimators (one per destination rule) over an
// event stream and records fitted α every Interval edges once the network
// has at least MinEdges edges, mirroring the paper's procedure ("we compute
// p_e(d) once after every 5000 new edges ... starting when the network
// reaches 600K edges", scaled by the caller).
type AlphaTracker struct {
	higher *PEEstimator
	random *PEEstimator

	// Interval is the number of edges between α checkpoints.
	Interval int64
	// MinEdges is the edge count at which checkpointing starts.
	MinEdges int64

	samples []AlphaSample
}

// NewAlphaTracker creates a tracker; rng feeds the random-destination rule.
func NewAlphaTracker(interval, minEdges int64, rng *rand.Rand) *AlphaTracker {
	if interval <= 0 {
		interval = 5000
	}
	return &AlphaTracker{
		higher:   NewPEEstimator(DestHigherDegree, nil),
		random:   NewPEEstimator(DestRandom, rng),
		Interval: interval,
		MinEdges: minEdges,
	}
}

// ObserveNode forwards a node arrival to both estimators.
func (t *AlphaTracker) ObserveNode(u graph.NodeID) {
	t.higher.ObserveNode(u)
	t.random.ObserveNode(u)
}

// ObserveEdge forwards an edge arrival and checkpoints α on schedule.
// day stamps the resulting sample when one is taken.
func (t *AlphaTracker) ObserveEdge(u, v graph.NodeID, day int32) {
	t.higher.ObserveEdge(u, v)
	t.random.ObserveEdge(u, v)
	n := t.higher.Steps()
	if n >= t.MinEdges && n%t.Interval == 0 {
		t.snapshot(day)
	}
}

func (t *AlphaTracker) snapshot(day int32) {
	ah, _, mh, errH := t.higher.Fit()
	ar, _, mr, errR := t.random.Fit()
	if errH != nil || errR != nil {
		return
	}
	t.samples = append(t.samples, AlphaSample{
		Edges:       t.higher.Steps(),
		Day:         day,
		AlphaHigher: ah,
		AlphaRandom: ar,
		MSEHigher:   mh,
		MSERandom:   mr,
	})
}

// Finish takes a final checkpoint (if the stream did not end exactly on an
// interval boundary) and returns all samples.
func (t *AlphaTracker) Finish(day int32) []AlphaSample {
	n := t.higher.Steps()
	if n >= t.MinEdges && (len(t.samples) == 0 || t.samples[len(t.samples)-1].Edges != n) {
		t.snapshot(day)
	}
	return t.samples
}

// Samples returns the checkpoints taken so far.
func (t *AlphaTracker) Samples() []AlphaSample { return t.samples }

// Estimator returns the underlying estimator for the given rule, for callers
// that want the raw p_e(d) points (Figs 3a–3b).
func (t *AlphaTracker) Estimator(rule DestRule) *PEEstimator {
	if rule == DestHigherDegree {
		return t.higher
	}
	return t.random
}

// FitPolynomial fits a degree-deg polynomial to α as a function of edge
// count, as the paper does in Fig 3(c) with degree 5. xsScale divides edge
// counts before fitting to keep the Vandermonde system well-conditioned;
// pass e.g. 1e6. The returned coefficients are in the scaled variable.
func FitPolynomial(samples []AlphaSample, rule DestRule, deg int, xsScale float64) ([]float64, error) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s.Edges) / xsScale
		if rule == DestHigherDegree {
			ys[i] = s.AlphaHigher
		} else {
			ys[i] = s.AlphaRandom
		}
	}
	return stats.PolyFit(xs, ys, deg)
}

// FitBucketPDF fits a power law to a log-binned PDF (Fig 2a): it returns the
// exponent of density ∝ x^(-gamma) as a positive gamma.
func FitBucketPDF(buckets []stats.Bucket) (gamma float64, err error) {
	var xs, ys []float64
	for _, b := range buckets {
		if b.Density > 0 {
			xs = append(xs, b.Center)
			ys = append(ys, b.Density)
		}
	}
	alpha, _, _, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return 0, err
	}
	return -alpha, nil
}
