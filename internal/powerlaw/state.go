package powerlaw

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Checkpoint codecs for the α(t) machinery. The AlphaTracker's RNG is
// owned by its creator (evolution.AlphaStage), which serializes the
// generator position alongside this state.

// SaveState serializes the tracker: every α sample taken so far plus both
// estimators' degree-class accumulators.
func (t *AlphaTracker) SaveState(e *checkpoint.Encoder) {
	e.U64(uint64(len(t.samples)))
	for _, s := range t.samples {
		e.I64(s.Edges)
		e.I32(s.Day)
		e.F64(s.AlphaHigher)
		e.F64(s.AlphaRandom)
		e.F64(s.MSEHigher)
		e.F64(s.MSERandom)
	}
	t.higher.saveState(e)
	t.random.saveState(e)
}

// LoadState is SaveState's inverse over a freshly constructed tracker.
func (t *AlphaTracker) LoadState(d *checkpoint.Decoder) error {
	n := d.Len()
	t.samples = make([]AlphaSample, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		t.samples = append(t.samples, AlphaSample{
			Edges: d.I64(), Day: d.I32(),
			AlphaHigher: d.F64(), AlphaRandom: d.F64(),
			MSEHigher: d.F64(), MSERandom: d.F64(),
		})
	}
	if err := t.higher.loadState(d); err != nil {
		return err
	}
	if err := t.random.loadState(d); err != nil {
		return err
	}
	return d.Err()
}

// saveState serializes the estimator's accumulators. The lazily folded
// denominator (cum/lastStep) is saved as-is: folding is a pure function
// of (step, countByDeg), so the restored estimator picks up exactly where
// the saved one left off.
func (e *PEEstimator) saveState(enc *checkpoint.Encoder) {
	enc.I32s(e.deg)
	enc.I64s(e.numer)
	enc.I64s(e.countByDeg)
	enc.F64s(e.cum)
	enc.I64s(e.lastStep)
	enc.I64(e.step)
}

func (e *PEEstimator) loadState(d *checkpoint.Decoder) error {
	e.deg = d.I32s()
	e.numer = d.I64s()
	e.countByDeg = d.I64s()
	e.cum = d.F64s()
	e.lastStep = d.I64s()
	e.step = d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	if len(e.numer) != len(e.countByDeg) || len(e.cum) != len(e.countByDeg) || len(e.lastStep) != len(e.countByDeg) {
		return fmt.Errorf("powerlaw: checkpoint degree-class arrays misaligned (%d/%d/%d/%d)",
			len(e.numer), len(e.countByDeg), len(e.cum), len(e.lastStep))
	}
	return nil
}
