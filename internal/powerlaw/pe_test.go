package powerlaw

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
)

// bruteDenominator recomputes Σ_t |{v: deg_{t-1}(v)=d}| naively for an
// event stream and compares with the estimator's lazy accounting.
func TestDenominatorMatchesBruteForce(t *testing.T) {
	rng := stats.NewRand(1)
	type edge struct{ u, v graph.NodeID }

	// Build a random valid stream: 20 nodes, 60 edge attempts.
	var nodes int32 = 0
	var stream []interface{}
	deg := map[graph.NodeID]int32{}
	seen := map[[2]graph.NodeID]bool{}
	for i := 0; i < 200; i++ {
		if nodes < 2 || rng.Intn(3) == 0 {
			stream = append(stream, nodes)
			deg[nodes] = 0
			nodes++
		} else {
			u, v := graph.NodeID(rng.Intn(int(nodes))), graph.NodeID(rng.Intn(int(nodes)))
			if u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if seen[[2]graph.NodeID{a, b}] {
				continue
			}
			seen[[2]graph.NodeID{a, b}] = true
			stream = append(stream, edge{u, v})
		}
	}

	est := NewPEEstimator(DestHigherDegree, nil)
	brute := map[int32]float64{} // degree -> Σ over steps of count
	cur := map[graph.NodeID]int32{}
	for _, item := range stream {
		switch x := item.(type) {
		case int32:
			est.ObserveNode(x)
			cur[x] = 0
		case edge:
			// Before applying: add current count-by-degree into brute.
			counts := map[int32]int64{}
			for _, d := range cur {
				counts[d]++
			}
			for d, c := range counts {
				brute[d] += float64(c)
			}
			est.ObserveEdge(x.u, x.v)
			cur[x.u]++
			cur[x.v]++
		}
	}
	// Compare: estimator's denominator for degree d is cum + pending fold.
	for d := int32(0); d < int32(len(est.cum)); d++ {
		got := est.cum[d] + float64(est.countByDeg[d])*float64(est.step-est.lastStep[d])
		if math.Abs(got-brute[d]) > 1e-9 {
			t.Fatalf("denominator mismatch at degree %d: got %v want %v", d, got, brute[d])
		}
	}
}

// purePA grows a graph by strict preferential attachment and checks α ≈ 1.
func TestPureStreamAlphaNearOne(t *testing.T) {
	rng := stats.NewRand(7)
	est := NewPEEstimator(DestHigherDegree, nil)
	g := graph.New(0)
	sampler := graph.NewPASampler(0)

	// Seed: two nodes and one edge.
	a, b := g.AddNode(), g.AddNode()
	est.ObserveNode(a)
	est.ObserveNode(b)
	g.AddEdge(a, b)
	est.ObserveEdge(a, b)
	sampler.Observe(a, b)

	for i := 0; i < 4000; i++ {
		u := g.AddNode()
		est.ObserveNode(u)
		// Each newcomer attaches to 2 degree-proportional targets.
		for k := 0; k < 2; k++ {
			v, _ := sampler.Sample(rng)
			if v == u || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
			est.ObserveEdge(u, v)
			sampler.Observe(u, v)
		}
	}
	alpha, _, mse, err := est.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 0.75 || alpha > 1.25 {
		t.Fatalf("pure PA alpha = %v, want ≈1", alpha)
	}
	if mse < 0 {
		t.Fatalf("mse = %v", mse)
	}
}

// Uniform-random attachment must yield α near 0 under the random rule.
func TestRandomStreamAlphaNearZero(t *testing.T) {
	rng := stats.NewRand(9)
	est := NewPEEstimator(DestRandom, stats.NewRand(10))
	g := graph.New(0)
	a, b := g.AddNode(), g.AddNode()
	est.ObserveNode(a)
	est.ObserveNode(b)
	g.AddEdge(a, b)
	est.ObserveEdge(a, b)

	// Edges between uniformly random existing node pairs: destination degree
	// is then degree-independent, the definition of non-preferential growth.
	for i := 0; i < 4000; i++ {
		u := g.AddNode()
		est.ObserveNode(u)
		for k := 0; k < 2; k++ {
			x := graph.NodeID(rng.Intn(g.NumNodes()))
			y := graph.NodeID(rng.Intn(g.NumNodes()))
			if x == y || g.HasEdge(x, y) {
				continue
			}
			g.AddEdge(x, y)
			est.ObserveEdge(x, y)
		}
	}
	alpha, _, _, err := est.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha) > 0.35 {
		t.Fatalf("random attachment alpha = %v, want ≈0", alpha)
	}
}

func TestFitTooFewPoints(t *testing.T) {
	est := NewPEEstimator(DestHigherDegree, nil)
	est.ObserveNode(0)
	est.ObserveNode(1)
	if _, _, _, err := est.Fit(); err != ErrTooFewPoints {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotExcludesZeroDenominator(t *testing.T) {
	est := NewPEEstimator(DestHigherDegree, nil)
	est.ObserveNode(0)
	est.ObserveNode(1)
	est.ObserveEdge(0, 1)
	for _, p := range est.Snapshot() {
		if p.PE <= 0 || p.PE > 1 {
			t.Fatalf("pe out of range: %+v", p)
		}
	}
}

func TestDestRuleString(t *testing.T) {
	if DestHigherDegree.String() != "higher-degree" || DestRandom.String() != "random" {
		t.Fatal("rule names wrong")
	}
}

func TestHigherRuleAboveRandomRule(t *testing.T) {
	// On the same PA-ish stream the higher-degree rule must fit a larger α
	// than the random rule (the paper's 0.2 gap, Fig 3c).
	rng := stats.NewRand(21)
	tr := NewAlphaTracker(1000, 1000, stats.NewRand(22))
	g := graph.New(0)
	sampler := graph.NewPASampler(0)
	a, b := g.AddNode(), g.AddNode()
	tr.ObserveNode(a)
	tr.ObserveNode(b)
	g.AddEdge(a, b)
	sampler.Observe(a, b)
	tr.ObserveEdge(a, b, 0)
	for i := 0; i < 3000; i++ {
		u := g.AddNode()
		tr.ObserveNode(u)
		for k := 0; k < 2; k++ {
			var v graph.NodeID
			if rng.Intn(2) == 0 {
				v, _ = sampler.Sample(rng)
			} else {
				v = graph.NodeID(rng.Intn(g.NumNodes()))
			}
			if v == u || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
			sampler.Observe(u, v)
			tr.ObserveEdge(u, v, int32(i/10))
		}
	}
	samples := tr.Finish(300)
	if len(samples) == 0 {
		t.Fatal("no alpha samples")
	}
	last := samples[len(samples)-1]
	if last.AlphaHigher <= last.AlphaRandom {
		t.Fatalf("alpha ordering violated: higher=%v random=%v", last.AlphaHigher, last.AlphaRandom)
	}
}

func TestAlphaTrackerScheduling(t *testing.T) {
	tr := NewAlphaTracker(10, 20, stats.NewRand(1))
	g := graph.New(0)
	rng := stats.NewRand(2)
	for i := 0; i < 100; i++ {
		u := g.AddNode()
		tr.ObserveNode(u)
		if i == 0 {
			continue
		}
		v := graph.NodeID(rng.Intn(int(u)))
		if g.AddEdge(u, v) == nil {
			tr.ObserveEdge(u, v, int32(i))
		}
	}
	samples := tr.Finish(99)
	if len(samples) == 0 {
		t.Fatal("expected samples after min edges")
	}
	for _, s := range samples {
		if s.Edges < 20 {
			t.Fatalf("sample before MinEdges: %+v", s)
		}
	}
	// Edge counts strictly increasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].Edges <= samples[i-1].Edges {
			t.Fatalf("non-increasing sample edges: %v then %v", samples[i-1].Edges, samples[i].Edges)
		}
	}
	// Finish twice must not duplicate.
	n := len(samples)
	if got := tr.Finish(99); len(got) != n {
		t.Fatalf("Finish added duplicate sample: %d -> %d", n, len(got))
	}
}

func TestNewAlphaTrackerDefaultInterval(t *testing.T) {
	tr := NewAlphaTracker(0, 0, stats.NewRand(1))
	if tr.Interval != 5000 {
		t.Fatalf("default interval = %d", tr.Interval)
	}
}

func TestFitPolynomialOnSamples(t *testing.T) {
	// α decaying linearly with edges: polynomial fit degree 1 recovers it.
	var samples []AlphaSample
	for i := 1; i <= 20; i++ {
		e := int64(i * 1000)
		samples = append(samples, AlphaSample{
			Edges:       e,
			AlphaHigher: 1.25 - 0.00003*float64(e),
			AlphaRandom: 1.05 - 0.00003*float64(e),
		})
	}
	coef, err := FitPolynomial(samples, DestHigherDegree, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-1.25) > 1e-9 || math.Abs(coef[1]+0.03) > 1e-9 {
		t.Fatalf("coef = %v", coef)
	}
	coefR, err := FitPolynomial(samples, DestRandom, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coefR[0]-1.05) > 1e-9 {
		t.Fatalf("coefR = %v", coefR)
	}
}

func TestFitBucketPDF(t *testing.T) {
	// Synthetic Pareto samples: density exponent should be ≈ alpha+1 = 2.5.
	rng := stats.NewRand(13)
	h, _ := stats.NewLogHistogram(1.6)
	for i := 0; i < 200000; i++ {
		h.Add(stats.Pareto(1, 1.5, rng))
	}
	gamma, err := FitBucketPDF(h.Buckets())
	if err != nil {
		t.Fatal(err)
	}
	if gamma < 2.1 || gamma > 2.9 {
		t.Fatalf("gamma = %v, want ≈2.5", gamma)
	}
}
