// Package powerlaw measures the strength of preferential attachment the way
// the paper does in §3.2: it accumulates the edge probability
//
//	p_e(d) = Σ_t [deg_{t-1}(dest(e_t)) = d] / Σ_t |{v : deg_{t-1}(v) = d}|
//
// over an edge stream, fits p_e(d) ∝ d^α by least squares in log-log space,
// and reports the fit's mean squared error in linear space (the paper's
// goodness metric). Because the Renren data lacks edge directionality, the
// paper brackets the truth with two destination-selection rules — always the
// higher-degree endpoint (biased toward PA) and a uniformly random endpoint —
// and so do we.
package powerlaw

import (
	"errors"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// DestRule selects which endpoint of an undirected edge is treated as the
// "destination" when measuring p_e(d).
type DestRule uint8

const (
	// DestHigherDegree always picks the higher-degree endpoint (upper
	// bound on PA strength; ties broken toward the first endpoint).
	DestHigherDegree DestRule = iota
	// DestRandom picks an endpoint uniformly at random (lower bound).
	DestRandom
)

// String names the rule.
func (r DestRule) String() string {
	if r == DestHigherDegree {
		return "higher-degree"
	}
	return "random"
}

// PEEstimator accumulates p_e(d) incrementally over a node/edge event
// stream. The denominator — the node-count-by-degree summed over every edge
// time step — is maintained lazily so the whole stream costs O(1) amortized
// per event rather than O(max degree).
type PEEstimator struct {
	rule DestRule
	rng  *rand.Rand

	deg []int32 // current degree of each node

	numer []int64 // numer[d]: edges whose destination had degree d

	countByDeg []int64   // current number of nodes with degree d
	cum        []float64 // Σ over past steps of countByDeg[d]
	lastStep   []int64   // step at which cum[d] was last folded
	step       int64     // number of edge events processed so far
}

// NewPEEstimator creates an estimator. rng is only used by DestRandom; it
// must be non-nil for that rule.
func NewPEEstimator(rule DestRule, rng *rand.Rand) *PEEstimator {
	return &PEEstimator{rule: rule, rng: rng}
}

// ensureDeg grows the per-degree arrays to cover degree d.
func (e *PEEstimator) ensureDeg(d int32) {
	for int32(len(e.countByDeg)) <= d {
		e.countByDeg = append(e.countByDeg, 0)
		e.cum = append(e.cum, 0)
		e.lastStep = append(e.lastStep, e.step)
		e.numer = append(e.numer, 0)
	}
}

// fold brings cum[d] up to date with the current step.
func (e *PEEstimator) fold(d int32) {
	e.cum[d] += float64(e.countByDeg[d]) * float64(e.step-e.lastStep[d])
	e.lastStep[d] = e.step
}

// setCount changes countByDeg[d] by delta, folding first.
func (e *PEEstimator) setCount(d int32, delta int64) {
	e.ensureDeg(d)
	e.fold(d)
	e.countByDeg[d] += delta
}

// ObserveNode registers the arrival of node u (degree 0).
func (e *PEEstimator) ObserveNode(u graph.NodeID) {
	for int32(len(e.deg)) <= u {
		e.deg = append(e.deg, 0)
		e.setCount(0, 1)
	}
}

// ObserveEdge registers edge {u, v}. Both endpoints must have been observed.
// Degrees used for destination selection and the numerator are the degrees
// *before* this edge, matching the paper's d_{t-1} definition.
func (e *PEEstimator) ObserveEdge(u, v graph.NodeID) {
	e.step++
	du, dv := e.deg[u], e.deg[v]
	destDeg := du
	switch e.rule {
	case DestHigherDegree:
		if dv > du {
			destDeg = dv
		}
	case DestRandom:
		if e.rng.Intn(2) == 1 {
			destDeg = dv
		}
	}
	e.ensureDeg(destDeg)
	e.numer[destDeg]++

	// Apply the edge: both endpoints move up one degree class.
	for _, w := range []graph.NodeID{u, v} {
		d := e.deg[w]
		e.setCount(d, -1)
		e.setCount(d+1, 1)
		e.deg[w] = d + 1
	}
}

// Steps returns the number of edges observed.
func (e *PEEstimator) Steps() int64 { return e.step }

// Point is one measured (degree, probability) sample of p_e.
type Point struct {
	Degree int
	PE     float64
}

// Snapshot returns the current p_e(d) for all degrees with a nonzero
// numerator and denominator. d = 0 is included in the output but excluded
// from power-law fits (log 0).
func (e *PEEstimator) Snapshot() []Point {
	var out []Point
	for d := range e.numer {
		if e.numer[d] == 0 {
			continue
		}
		denom := e.cum[d] + float64(e.countByDeg[d])*float64(e.step-e.lastStep[d])
		if denom <= 0 {
			continue
		}
		out = append(out, Point{Degree: d, PE: float64(e.numer[d]) / denom})
	}
	return out
}

// ErrTooFewPoints is returned by Fit when p_e has fewer than two positive-
// degree samples.
var ErrTooFewPoints = errors.New("powerlaw: too few p_e points to fit")

// Fit fits p_e(d) = C * d^alpha over positive degrees and returns alpha and
// the linear-space MSE of the fit.
func (e *PEEstimator) Fit() (alpha, c, mse float64, err error) {
	pts := e.Snapshot()
	var xs, ys []float64
	for _, p := range pts {
		if p.Degree > 0 {
			xs = append(xs, float64(p.Degree))
			ys = append(ys, p.PE)
		}
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrTooFewPoints
	}
	return stats.FitPowerLaw(xs, ys)
}
