// Quickstart: generate a synthetic Renren-like trace, run the multi-scale
// pipeline, and print a handful of headline numbers from each scale.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// A small two-network scenario: Xiaonei grows from day 0, the 5Q
	// network merges in on day 150, the trace ends on day 300.
	gcfg := repro.SmallGenConfig()
	tr, err := repro.Generate(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	m := tr.Meta
	fmt.Printf("trace: %d days, %d nodes (%d xiaonei, %d 5q, %d new), %d edges\n",
		m.Days, m.Nodes, m.Xiaonei, m.FiveQ, m.NewUsers, m.Edges)

	// The whole paper in one call.
	res, err := repro.Run(tr, repro.DefaultPipeline())
	if err != nil {
		log.Fatal(err)
	}

	// Network level (§2): final first-order metrics.
	last := res.Metrics[len(res.Metrics)-1]
	fmt.Printf("network level: avg degree %.1f, clustering %.3f, assortativity %+.3f\n",
		last.AvgDegree, last.Clustering, last.Assort)

	// Node level (§3): preferential-attachment strength.
	s := res.Alpha.Samples
	fmt.Printf("node level: alpha decays %.2f -> %.2f (higher-degree rule), final MSE %.1e\n",
		s[0].AlphaHigher, s[len(s)-1].AlphaHigher, res.Alpha.FinalMSEHigher)

	// Community level (§4): structure and dynamics.
	cl := res.Community.Stats[len(res.Community.Stats)-1]
	fmt.Printf("community level: %d communities, modularity %.2f, top-5 cover %.0f%%\n",
		cl.NumCommunities, cl.Modularity, 100*cl.Top5Coverage)

	// Network level event (§5): the merge.
	fmt.Printf("merge: %.0f%% of 5Q accounts silent at the merge (duplicates), "+
		"inter-OSN distance ends at %.2f hops\n",
		100*res.Merge.InactiveAtMergeFiveQ,
		res.Merge.Distances[len(res.Merge.Distances)-1].XiaoneiTo5Q)

	// Every figure of the paper is available as a table:
	tab, err := res.Figure("fig2c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fig2c (%s): %d rows, columns %v\n", tab.Title, len(tab.Rows), tab.Columns)

	// When only one panel is needed, skip the full pipeline: RunFigures
	// plans the minimal stage set for the request (here just the metrics
	// stage — one replay pass instead of the whole multi-scale analysis).
	one, err := repro.RunFigures(context.Background(), tr.Source(), repro.DefaultPipeline(), "fig1a")
	if err != nil {
		log.Fatal(err)
	}
	tab, err = one.Figure("fig1a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fig1a on demand (%s): %d rows\n", tab.Title, len(tab.Rows))
}
