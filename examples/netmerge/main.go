// netmerge reproduces the §5 workflow (Figs 8–9): the Xiaonei/5Q merge —
// duplicate-account estimation, edge-type dynamics, and the collapse of the
// distance between the two networks. It demonstrates the out-of-core data
// plane end to end: the trace is stream-generated straight to disk and the
// pipeline replays it through a FileSource, so the event stream is never
// resident in memory.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run keeps error handling deferred-friendly: the temp dir is removed on
// every exit path (log.Fatal in main would skip defers).
func run() error {
	dir, err := os.MkdirTemp("", "netmerge")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "renren.trace")

	// Stream-generate: simulation events go straight into the encoder.
	meta, err := gen.GenerateToFile(gen.SmallConfig(), path)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d xiaonei + %d 5q users at the merge (day %d), %d later arrivals\n",
		meta.Xiaonei, meta.FiveQ, meta.MergeDay, meta.NewUsers)

	// Stream-replay: the trace is validated and analyzed straight off
	// disk through FileSource cursors, and the demand-driven plan for the
	// §5 panels runs only the osnmerge stage.
	src, err := trace.OpenFileSource(path)
	if err != nil {
		return err
	}
	if err := trace.ValidateSource(src); err != nil {
		return err
	}
	pres, err := core.RunFigures(context.Background(), src, core.DefaultConfig(),
		"fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c")
	if err != nil {
		return err
	}
	res := pres.Merge
	fmt.Printf("activity threshold: %d days (the paper's t=94 analogue)\n", res.ActivityThreshold)

	// Fig 8a/8b: duplicate accounts.
	fmt.Printf("fig8ab: immediately inactive accounts: xiaonei %.0f%%, 5q %.0f%% "+
		"(generator planted 11%% / 28%%)\n",
		100*res.InactiveAtMergeXiaonei, 100*res.InactiveAtMergeFiveQ)

	// Fig 8c: which edge type drives growth, and when the crossover happens.
	crossover := int32(-1)
	for _, d := range res.EdgesPerDay {
		if d.NewUsers > d.Internal && d.NewUsers > d.External {
			crossover = d.Day
			break
		}
	}
	fmt.Printf("fig8c: new-user edges first dominate on day +%d after the merge\n", crossover)

	// Fig 9a/9b: edge-type preferences per network.
	lastX := res.RatiosXiaonei[len(res.RatiosXiaonei)-1]
	lastQ := res.RatiosFiveQ[len(res.RatiosFiveQ)-1]
	fmt.Printf("fig9a: final internal/external ratio: xiaonei %.2f, 5q %.2f\n",
		lastX.IntOverExt, lastQ.IntOverExt)
	fmt.Printf("fig9b: final new/external ratio:      xiaonei %.2f, 5q %.2f\n",
		lastX.NewOverExt, lastQ.NewOverExt)

	// Fig 9c: the two OSNs become one connected whole.
	fmt.Println("fig9c: inter-OSN distance (pre-merge users only):")
	for i, p := range res.Distances {
		if i%4 == 0 || i == len(res.Distances)-1 {
			fmt.Printf("  day +%3d: xiaonei->5q %.2f hops, 5q->xiaonei %.2f hops\n",
				p.DaysAfter, p.XiaoneiTo5Q, p.FiveQToXiaonei)
		}
	}
	return nil
}
