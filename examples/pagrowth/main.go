// pagrowth reproduces the §3 workflow (Figs 2–3): how edge creation behaves
// in absolute time and how the strength of preferential attachment decays
// as the network grows — including the control run with the decay disabled.
// Both runs go through the core pipeline over the trace's Source.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/gen"
)

func analyze(name string, cfg gen.Config) {
	tr, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s: %d nodes, %d edges ---\n", name, tr.Meta.Nodes, tr.Meta.Edges)

	// Demand-driven run: requesting the §3 panels plans exactly the
	// evolution and alpha stages, which share the pipeline's one
	// streaming pass.
	pcfg := core.DefaultConfig()
	pcfg.Alpha = evolution.AlphaOptions{Interval: 2000, MinEdges: 4000, Seed: 1, PolyDegree: 3}
	res, err := core.RunFigures(context.Background(), tr.Source(), pcfg,
		"fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c")
	if err != nil {
		log.Fatal(err)
	}

	// Fig 2: time dynamics of edge creation.
	ev := res.Evolution
	m1 := ev.InterArrival[0]
	fmt.Printf("fig2a: month-1 inter-arrival PDF exponent %.2f over %d gaps (paper: 1.8-2.5)\n",
		m1.Gamma, m1.Samples)
	firstHalf := 0.0
	for i, f := range ev.LifetimeHist {
		if i < len(ev.LifetimeHist)/2 {
			firstHalf += f
		}
	}
	fmt.Printf("fig2b: %.0f%% of a user's edges fall in the first half of her lifetime\n", 100*firstHalf)
	if n := len(ev.MinAge); n > 0 {
		early, late := ev.MinAge[n/10], ev.MinAge[n-1]
		fmt.Printf("fig2c: share of edges from <=30d-old nodes: %.0f%% (day %d) -> %.0f%% (day %d)\n",
			100*early.Frac[2], early.Day, 100*late.Frac[2], late.Day)
	}

	// Fig 3: strength of preferential attachment over time.
	al := res.Alpha
	s := al.Samples
	fmt.Printf("fig3c: alpha(higher) %.3f -> %.3f, alpha(random) %.3f -> %.3f, final gap %.2f\n",
		s[0].AlphaHigher, s[len(s)-1].AlphaHigher,
		s[0].AlphaRandom, s[len(s)-1].AlphaRandom,
		s[len(s)-1].AlphaHigher-s[len(s)-1].AlphaRandom)
	fmt.Printf("fig3a: final p_e(d) fit alpha=%.3f MSE=%.2e (%d degree classes)\n",
		al.FinalAlphaHigher, al.FinalMSEHigher, len(al.PEHigher))
}

func main() {
	log.SetFlags(0)

	// A single-network scenario big enough (≈30k nodes) for the PA-decay
	// mechanism to span a meaningful range of network sizes.
	cfg := gen.DefaultConfig()
	cfg.Days = 350
	cfg.MaxNodes = 30000
	cfg.Arrival.Base = 12
	cfg.Arrival.GrowthStart = 0.07
	cfg.Arrival.GrowthEnd = 0.012
	cfg.Arrival.GrowthTau = 80
	cfg.Arrival.Dips = nil
	cfg.Arrival.Bursts = nil
	cfg.Merge = nil
	analyze("with PA decay (paper mechanism)", cfg)

	// Control: constant preferential attachment — α(t) stays flat,
	// demonstrating that the measured decay is driven by the mechanism.
	flat := cfg
	flat.Attach.PALogSlope = 0
	flat.Attach.PAStart = 0.6
	analyze("constant PA (control)", flat)
}
