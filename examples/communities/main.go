// communities reproduces the §4 workflow (Figs 4–7): incremental Louvain
// with similarity-based tracking, community lifecycle statistics, SVM merge
// prediction, and the impact of community membership on users — planned and
// run on demand through core.RunFigures, the same demand-driven API the
// figure harness uses.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/tracking"
)

func main() {
	log.SetFlags(0)

	tr, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d nodes, %d edges, merge day %d\n",
		tr.Meta.Nodes, tr.Meta.Edges, tr.Meta.MergeDay)

	// Demand-driven run: ask for the §4 panels and the planner resolves
	// the community, users, and svm stages (fig6b pulls the SVM evaluation,
	// fig7a the users stage — both ride the community pipeline's one
	// shared streaming pass).
	cfg := core.DefaultConfig() // community defaults: δ=0.04, 3-day snapshots, min size 10
	pres, err := core.RunFigures(context.Background(), tr.Source(), cfg,
		"fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b", "fig7c")
	if err != nil {
		log.Fatal(err)
	}
	res := pres.Community

	// Fig 4a: community structure strength.
	lastStat := res.Stats[len(res.Stats)-1]
	fmt.Printf("fig4a: %d snapshots; final modularity %.2f with %d communities\n",
		len(res.Stats), lastStat.Modularity, lastStat.NumCommunities)

	// Fig 5: statistics over time.
	fmt.Printf("fig5b: top-5 coverage %.0f%% -> %.0f%%\n",
		100*res.Stats[2].Top5Coverage, 100*lastStat.Top5Coverage)
	ls := res.Lifetimes()
	fmt.Printf("fig5c: %d tracked communities, median lifetime %.0f days\n",
		len(ls), ls[len(ls)/2])

	// Fig 6: lifecycle events.
	var births, deaths, merges, splits int
	for _, ev := range res.Events {
		switch ev.Type {
		case tracking.Birth:
			births++
		case tracking.Death:
			deaths++
		case tracking.Merge:
			merges++
		case tracking.Split:
			splits++
		}
	}
	fmt.Printf("events: %d births, %d merges, %d splits, %d dissolutions\n",
		births, merges, splits, deaths)
	mr, sr := res.SizeRatios()
	if len(mr) > 0 {
		fmt.Printf("fig6a: median merge size ratio %.4f over %d merges (paper: tiny, <0.005 for 80%%)\n",
			mr[len(mr)/2], len(mr))
	}
	if len(sr) > 0 {
		fmt.Printf("fig6a: median split size ratio %.3f over %d splits\n", sr[len(sr)/2], len(sr))
	}
	if _, frac := res.StrongestTies(); merges > 0 {
		fmt.Printf("fig6c: %.0f%% of merges chose the strongest-tie destination (paper: 99%%)\n", 100*frac)
	}

	// Fig 6b: SVM merge prediction (evaluated by the pipeline).
	if pres.MergeOverall.N == 0 {
		log.Print("merge prediction skipped: dataset too small to split")
	} else {
		fmt.Printf("fig6b: overall accuracy %.0f%% (pos %.0f%%, neg %.0f%%) on %d held-out samples, %d age bins\n",
			100*pres.MergeOverall.Accuracy, 100*pres.MergeOverall.PosAccuracy,
			100*pres.MergeOverall.NegAccuracy, pres.MergeOverall.N, len(pres.MergeBins))
	}

	// Fig 7: impact of community membership on users.
	ui := pres.Users
	fmt.Printf("fig7a: %d community-user gaps vs %d non-community gaps\n",
		len(ui.CommunityGaps), len(ui.NonCommunityGaps))
	for name, lifetimes := range ui.LifetimesBySize {
		if len(lifetimes) == 0 {
			continue
		}
		fmt.Printf("fig7b: bucket %-14s median lifetime %5.0f days (%d users)\n",
			name, lifetimes[len(lifetimes)/2], len(lifetimes))
	}
}
