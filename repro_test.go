package repro

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

// facadeResult runs a cheap pipeline through the public facade.
func facadeResult(t *testing.T) *Result {
	t.Helper()
	cfg := SmallGenConfig()
	cfg.Days = 150
	cfg.Merge = nil
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tr.Events); err != nil {
		t.Fatal(err)
	}
	p := DefaultPipeline()
	p.SkipCommunity = true
	p.SkipMerge = true
	p.Alpha.Interval = 1000
	p.Alpha.MinEdges = 2000
	p.Alpha.PolyDegree = 2
	res, err := Run(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFacadeRoundTrip(t *testing.T) {
	res := facadeResult(t)
	tab, err := res.Figure("fig1c")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty figure")
	}
}

func TestFacadeFigureTSV(t *testing.T) {
	res := facadeResult(t)
	tab, err := res.Figure("fig2c")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# fig2c:") {
		t.Fatalf("missing header: %q", out[:50])
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var header string
	dataLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if header == "" {
			header = l
			continue
		}
		dataLines++
		if len(strings.Split(l, "\t")) != len(tab.Columns) {
			t.Fatalf("bad row: %q", l)
		}
	}
	if header != strings.Join(tab.Columns, "\t") {
		t.Fatalf("header = %q", header)
	}
	if dataLines != len(tab.Rows) {
		t.Fatalf("rows = %d, want %d", dataLines, len(tab.Rows))
	}
}

func TestAllFiguresListed(t *testing.T) {
	if len(AllFigures) != 30 {
		t.Fatalf("AllFigures = %d panels, want 30", len(AllFigures))
	}
	seen := map[string]bool{}
	for _, id := range AllFigures {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, "fig") {
			t.Fatalf("bad id %q", id)
		}
	}
}

func TestDefaultConfigsDistinct(t *testing.T) {
	d, s := DefaultGenConfig(), SmallGenConfig()
	if d.Days == s.Days {
		t.Fatal("presets should differ in horizon")
	}
	if d.Merge == nil || s.Merge == nil {
		t.Fatal("both presets include the merge scenario")
	}
	// Mutating one preset must not affect the other (no shared pointers
	// besides Merge, which must be a fresh struct each call).
	a, b := DefaultGenConfig(), DefaultGenConfig()
	a.Merge.Day = 5
	if b.Merge.Day == 5 {
		t.Fatal("DefaultGenConfig shares Merge pointer across calls")
	}
}

// TestRunFiguresFacade drives the demand-driven flow end to end through
// the facade: plan one panel, run it, and read it back; other panels'
// stages never ran.
func TestRunFiguresFacade(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.Days = 150
	cfg.Merge = nil
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFigures(context.Background(), tr.Source(), DefaultPipeline(), "fig1a")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := res.Figure("fig1a")
	if err != nil || len(tab.Rows) == 0 {
		t.Fatalf("fig1a: %v", err)
	}
	if _, err := res.Figure("fig2a"); !errors.Is(err, ErrStageSkipped) {
		t.Fatalf("fig2a err = %v, want ErrStageSkipped", err)
	}
	if _, err := RunFigures(context.Background(), tr.Source(), DefaultPipeline(), "figXX"); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("err = %v, want ErrUnknownFigure", err)
	}
}

// TestValidateSourceFacade validates a trace streamed off disk through the
// facade, without materializing the event slice.
func TestValidateSourceFacade(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.Days = 60
	cfg.Merge = nil
	path := filepath.Join(t.TempDir(), "v.trace")
	if _, err := GenerateToFile(cfg, path); err != nil {
		t.Fatal(err)
	}
	src, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSource(src); err != nil {
		t.Fatal(err)
	}
	// A truncated payload must surface through the streaming validator
	// (the header still parses, so the damage only shows mid-pass). The
	// cut lands inside the event stream, past the day-index footer whose
	// length the fixed trailer records — clipping only the footer would
	// merely drop the index.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	footer := len(raw) - 12 - int(binary.LittleEndian.Uint64(raw[len(raw)-12:len(raw)-4]))
	if err := os.WriteFile(path, raw[:footer-4], 0o644); err != nil {
		t.Fatal(err)
	}
	src, err = OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSource(src); err == nil {
		t.Fatal("truncated trace validated clean")
	}
}

// TestRegistryFacade asserts the figure -> stage mapping is reachable
// through the facade for tooling.
func TestRegistryFacade(t *testing.T) {
	if len(Registry()) == 0 {
		t.Fatal("empty registry")
	}
	stage, err := StageFor("fig3c")
	if err != nil || stage != "alpha" {
		t.Fatalf("StageFor(fig3c) = %q, %v", stage, err)
	}
}

func TestGenerateAndRunFacade(t *testing.T) {
	cfg := gen.SmallConfig()
	cfg.Days = 120
	cfg.Merge = nil
	p := DefaultPipeline()
	p.SkipCommunity = true
	p.SkipMerge = true
	p.SkipMetrics = true
	p.Alpha.Interval = 1000
	p.Alpha.MinEdges = 2000
	p.Alpha.PolyDegree = 2
	tr, res, err := GenerateAndRun(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || res == nil || res.Alpha == nil {
		t.Fatal("incomplete")
	}
}
