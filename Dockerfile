# Build the figure-serving daemon. The module is pure stdlib Go, so the
# runtime stage is a scratch image holding one static binary.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/rrserved ./cmd/rrserved

FROM scratch
COPY --from=build /out/rrserved /rrserved
# /data is where the trace file and the checkpoint directory live; mount
# it from the host (see docker-compose.yml).
VOLUME /data
EXPOSE 8080
ENTRYPOINT ["/rrserved"]
CMD ["-trace", "/data/renren.trace", "-checkpoint-dir", "/data/ckpt", "-addr", ":8080"]
